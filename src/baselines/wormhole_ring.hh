/**
 * @file
 * Buffered wormhole ring baseline (Dally, the paper's reference
 * [10]).
 *
 * The RMB borrows wormhole's flit decomposition but switches
 * *circuits*: data only flows after the Hack and nothing is
 * buffered mid-route.  This baseline implements the alternative the
 * paper defines itself against - classical wormhole on the same
 * one-way ring: the header advances hop by hop without waiting for
 * an acknowledgement, every node buffers one flit per virtual
 * channel, and blocked messages hold buffers (not whole paths).
 * Deadlock freedom on the ring cycle comes from Dally & Seitz's
 * dateline rule: messages allocate class-0 virtual channels until
 * they cross the dateline gap (N-1 -> 0), class-1 after.
 *
 * Head flits spend headerHopDelay per hop (routing decision), body
 * flits flitDelay; each gap's physical link transfers one flit per
 * slot, round-robin over its virtual channels.
 */

#ifndef RMB_BASELINES_WORMHOLE_RING_HH
#define RMB_BASELINES_WORMHOLE_RING_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "netbase/network.hh"

namespace rmb {
namespace baseline {

/** Timing/geometry of the wormhole ring. */
struct WormholeConfig
{
    sim::Tick headerHopDelay = 4; //!< head-flit transfer per gap
    sim::Tick flitDelay = 1;      //!< body/tail transfer per gap
    /** Virtual channels per dateline class (total VCs = 2x). */
    std::uint32_t vcsPerClass = 1;
};

/** One-way wormhole ring with dateline virtual channels. */
class WormholeRingNetwork : public net::Network
{
  public:
    WormholeRingNetwork(sim::Simulator &simulator,
                        net::NodeId num_nodes,
                        const WormholeConfig &config);

    net::MessageId send(net::NodeId src, net::NodeId dst,
                        std::uint32_t payload_flits) override;

    std::uint32_t
    totalVcsPerGap() const
    {
        return 2 * config_.vcsPerClass;
    }

  private:
    /** One virtual channel of one gap. */
    struct Vc
    {
        net::MessageId owner = net::kNoMessage;
        /** The one-flit buffer at the downstream node. */
        bool slotFull = false;
        std::uint32_t slotSeq = 0;
        bool slotIsHead = false;
        bool slotIsTail = false;
    };

    /** Per-message progress. */
    struct Worm
    {
        net::NodeId src = 0;
        net::NodeId dst = 0;
        std::uint32_t totalFlits = 0;  //!< head + payload + tail
        std::uint32_t injected = 0;    //!< flits that left the source
        std::uint32_t consumed = 0;    //!< flits eaten at the dst
        /** VC index per gap while owned (gap -> vc). */
        std::unordered_map<net::NodeId, std::uint32_t> vcAt;
    };

    struct Node
    {
        std::deque<net::MessageId> sendQueue;
    };

    /** Gap a message's flit enters after node @p at. */
    net::NodeId
    gapAfter(net::NodeId at) const
    {
        return at;
    }

    /** Dateline class of a message when entering @p gap. */
    std::uint32_t classAt(const Worm &worm, net::NodeId gap) const;

    /** Try to allocate a VC at @p gap for @p msg; kNoVc if full. */
    std::uint32_t allocateVc(net::NodeId gap, net::MessageId msg);

    /** Attempt one transfer on @p gap's physical link. */
    void linkStep(net::NodeId gap);

    /** Schedule a link step if idle and work may be pending. */
    void kickLink(net::NodeId gap);

    /** After a slot empties upstream, push the worm onward. */
    void kickDownstream(net::NodeId gap);

    void consumeAtDestination(net::NodeId gap, std::uint32_t vc);

    WormholeConfig config_;
    std::vector<std::vector<Vc>> vcs_; //!< [gap][vc]
    std::vector<Node> nodes_;
    std::unordered_map<net::MessageId, Worm> worms_;
    /** Link serialization: next free tick per gap. */
    std::vector<sim::Tick> linkFreeAt_;
    std::vector<bool> linkScheduled_;
    /** Round-robin pointer per gap. */
    std::vector<std::uint32_t> rrNext_;

    static constexpr std::uint32_t kNoVc = UINT32_MAX;
};

} // namespace baseline
} // namespace rmb

#endif // RMB_BASELINES_WORMHOLE_RING_HH
