#include "baselines/mesh.hh"

#include "common/logging.hh"

namespace rmb {
namespace baseline {

MeshNetwork::MeshNetwork(sim::Simulator &simulator,
                         std::uint32_t width, std::uint32_t height,
                         const CircuitConfig &config,
                         std::uint32_t channels)
    : CircuitNetwork(simulator, "Mesh", width * height, config),
      width_(width), height_(height),
      links_(static_cast<std::size_t>(width) * height,
             {UINT32_MAX, UINT32_MAX, UINT32_MAX, UINT32_MAX})
{
    if (width < 2 || height < 1)
        fatal("mesh needs width >= 2 and height >= 1");
    for (std::uint32_t y = 0; y < height_; ++y) {
        for (std::uint32_t x = 0; x < width_; ++x) {
            auto &l = links_[y * width_ + x];
            if (x + 1 < width_)
                l[East] = addLink(channels);
            if (x > 0)
                l[West] = addLink(channels);
            if (y + 1 < height_)
                l[North] = addLink(channels);
            if (y > 0)
                l[South] = addLink(channels);
        }
    }
}

LinkId
MeshNetwork::linkTo(std::uint32_t x, std::uint32_t y, Dir d) const
{
    const LinkId id = links_[y * width_ + x][d];
    rmb_assert(id != UINT32_MAX, "no link in direction ", int{d},
               " from (", x, ",", y, ")");
    return id;
}

std::vector<LinkId>
MeshNetwork::route(net::NodeId src, net::NodeId dst) const
{
    std::uint32_t x = src % width_;
    std::uint32_t y = src / width_;
    const std::uint32_t dx = dst % width_;
    const std::uint32_t dy = dst / width_;
    std::vector<LinkId> path;
    // XY dimension-order routing: correct x first, then y.
    while (x != dx) {
        if (x < dx) {
            path.push_back(linkTo(x, y, East));
            ++x;
        } else {
            path.push_back(linkTo(x, y, West));
            --x;
        }
    }
    while (y != dy) {
        if (y < dy) {
            path.push_back(linkTo(x, y, North));
            ++y;
        } else {
            path.push_back(linkTo(x, y, South));
            --y;
        }
    }
    return path;
}

} // namespace baseline
} // namespace rmb
