#include "baselines/multibus.hh"

#include "common/logging.hh"

namespace rmb {
namespace baseline {

MultiBusNetwork::MultiBusNetwork(sim::Simulator &simulator,
                                 net::NodeId num_nodes,
                                 std::uint32_t num_buses,
                                 const CircuitConfig &config)
    : CircuitNetwork(simulator, "MultiBus", num_nodes, config),
      numBuses_(num_buses)
{
    if (num_buses < 1)
        fatal("multibus needs at least one bus");
    medium_ = addLink(num_buses);
}

std::vector<LinkId>
MultiBusNetwork::route(net::NodeId src, net::NodeId dst) const
{
    (void)src;
    (void)dst;
    // Any free global bus carries the whole message in one hop.
    return {medium_};
}

IdealRingNetwork::IdealRingNetwork(sim::Simulator &simulator,
                                   net::NodeId num_nodes,
                                   std::uint32_t num_buses,
                                   const CircuitConfig &config)
    : CircuitNetwork(simulator, "IdealRing", num_nodes, config),
      numBuses_(num_buses)
{
    if (num_buses < 1)
        fatal("ring needs at least one channel per gap");
    gaps_.reserve(num_nodes);
    for (net::NodeId g = 0; g < num_nodes; ++g)
        gaps_.push_back(addLink(num_buses));
}

std::vector<LinkId>
IdealRingNetwork::route(net::NodeId src, net::NodeId dst) const
{
    std::vector<LinkId> path;
    for (net::NodeId g = src; g != dst;
         g = (g + 1) % numNodes()) {
        path.push_back(gaps_[g]);
    }
    return path;
}

} // namespace baseline
} // namespace rmb
