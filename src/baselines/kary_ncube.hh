/**
 * @file
 * k-ary n-cube baseline.
 *
 * The paper's concluding remarks name "comparison with other
 * universal interconnection networks such as the k-ary n cube
 * network" as future research; this implements it.  Nodes form an
 * n-dimensional torus with radix r per dimension (N = r^n);
 * channels are bidirectional (one directed link each way) and
 * routing is dimension-ordered, taking the shorter way around each
 * dimension's ring.  The binary hypercube is the r = 2 special
 * case; the single ring is n = 1.
 */

#ifndef RMB_BASELINES_KARY_NCUBE_HH
#define RMB_BASELINES_KARY_NCUBE_HH

#include <cstdint>
#include <vector>

#include "baselines/circuit_network.hh"

namespace rmb {
namespace baseline {

/** radix^dimensions nodes, dimension-order routed. */
class KaryNcubeNetwork : public CircuitNetwork
{
  public:
    KaryNcubeNetwork(sim::Simulator &simulator, std::uint32_t radix,
                     std::uint32_t dimensions,
                     const CircuitConfig &config,
                     std::uint32_t channels = 1);

    std::uint32_t radix() const { return radix_; }
    std::uint32_t dimensions() const { return dimensions_; }

    /** Digit @p d of node @p u in base radix. */
    std::uint32_t digit(net::NodeId u, std::uint32_t d) const;

  protected:
    std::vector<LinkId> route(net::NodeId src,
                              net::NodeId dst) const override;

  private:
    /** Directed link from @p u along dimension @p d, direction
     *  @p plus (true = +1 mod radix). */
    LinkId linkFrom(net::NodeId u, std::uint32_t d, bool plus) const;

    std::uint32_t radix_;
    std::uint32_t dimensions_;
    /** links_[(u * dims + d) * 2 + (plus ? 1 : 0)] */
    std::vector<LinkId> links_;
    /** Per-dimension stride: radix^d. */
    std::vector<std::uint32_t> stride_;
};

} // namespace baseline
} // namespace rmb

#endif // RMB_BASELINES_KARY_NCUBE_HH
