/**
 * @file
 * Fat-tree baseline (Leiserson, paper reference [6]).
 *
 * A complete binary tree over N = 2^m leaf processors.  Each tree
 * edge is a pair of directed channels (up and down); the channel
 * capacity of an edge whose subtree holds s leaves is min(s, k),
 * which for k = N is Leiserson's doubling fat tree and for k < N is
 * the k-permutation-capable tree of the paper's Figure 11.  Routing
 * climbs to the lowest common ancestor and descends.
 */

#ifndef RMB_BASELINES_FATTREE_HH
#define RMB_BASELINES_FATTREE_HH

#include <cstdint>
#include <vector>

#include "baselines/circuit_network.hh"

namespace rmb {
namespace baseline {

/** Fat tree over N = 2^m processors with capacity cap k. */
class FatTreeNetwork : public CircuitNetwork
{
  public:
    FatTreeNetwork(sim::Simulator &simulator, net::NodeId num_nodes,
                   std::uint32_t capacity_cap,
                   const CircuitConfig &config);

    std::uint32_t capacityCap() const { return capacityCap_; }

  protected:
    std::vector<LinkId> route(net::NodeId src,
                              net::NodeId dst) const override;

  private:
    /** Heap index of processor @p p's leaf. */
    std::uint32_t leafOf(net::NodeId p) const;

    std::uint32_t capacityCap_;
    /** Up/down channel per non-root heap node v (1-indexed heap). */
    std::vector<LinkId> up_;
    std::vector<LinkId> down_;
};

} // namespace baseline
} // namespace rmb

#endif // RMB_BASELINES_FATTREE_HH
