/**
 * @file
 * 2-D mesh baseline (paper section 3.1): degree-4 nodes, XY
 * dimension-order routing, circuit switched.
 */

#ifndef RMB_BASELINES_MESH_HH
#define RMB_BASELINES_MESH_HH

#include <array>
#include <cstdint>
#include <vector>

#include "baselines/circuit_network.hh"

namespace rmb {
namespace baseline {

/** Non-toroidal W x H mesh; node (x, y) has id y*W + x. */
class MeshNetwork : public CircuitNetwork
{
  public:
    /**
     * @param channels parallel channels per mesh link (the paper's
     *        sqrt(k)-expanded mesh uses > 1 to embed k-permutations).
     */
    MeshNetwork(sim::Simulator &simulator, std::uint32_t width,
                std::uint32_t height, const CircuitConfig &config,
                std::uint32_t channels = 1);

    std::uint32_t width() const { return width_; }
    std::uint32_t height() const { return height_; }

  protected:
    std::vector<LinkId> route(net::NodeId src,
                              net::NodeId dst) const override;

  private:
    enum Dir { East, West, North, South };

    LinkId linkTo(std::uint32_t x, std::uint32_t y, Dir d) const;

    std::uint32_t width_;
    std::uint32_t height_;
    /** link id per (node, direction); UINT32_MAX where absent. */
    std::vector<std::array<LinkId, 4>> links_;
};

} // namespace baseline
} // namespace rmb

#endif // RMB_BASELINES_MESH_HH
