/**
 * @file
 * Generic circuit-switched network engine for the baseline
 * topologies (paper section 3).
 *
 * The engine mirrors the RMB's protocol timing exactly - header flit
 * per hop, Hack back along the path, pipelined data flits, Fack
 * teardown - but reserves *links* (channels of a topology-defined
 * graph) instead of reconfigurable bus segments, so benches compare
 * topology and switching strategy rather than simulator artifacts.
 *
 * Subclasses define the link graph and a deterministic routing
 * function; multi-channel links (e.g. fat-tree capacities, EHC
 * doubled dimensions) are expressed as link capacities.
 */

#ifndef RMB_BASELINES_CIRCUIT_NETWORK_HH
#define RMB_BASELINES_CIRCUIT_NETWORK_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "netbase/network.hh"
#include "sim/random.hh"

namespace rmb {
namespace baseline {

/** Index of a directed link in the topology graph. */
using LinkId = std::uint32_t;

/** Timing/retry knobs shared by every baseline network. */
struct CircuitConfig
{
    sim::Tick headerHopDelay = 4;
    sim::Tick ackHopDelay = 2;
    sim::Tick flitDelay = 1;
    sim::Tick retryBackoffMin = 8;
    sim::Tick retryBackoffMax = 32;
    /** Doubled per consecutive retry, capped (same as the RMB). */
    bool exponentialBackoff = true;
    sim::Tick retryBackoffCap = 512;
    std::uint32_t maxRetries = 0; //!< 0 = unlimited
    std::uint64_t seed = 1;
};

/**
 * Base class implementing the circuit lifecycle over an abstract
 * link graph.  A blocked setup releases its partial path and retries
 * after a randomized backoff (deadlock-free, mirroring the RMB's
 * default NackRetry policy).
 */
class CircuitNetwork : public net::Network
{
  public:
    net::MessageId send(net::NodeId src, net::NodeId dst,
                        std::uint32_t payload_flits) override;

    /** Channels of @p link currently in use. */
    std::uint32_t linkInUse(LinkId link) const;

    /** Capacity of @p link. */
    std::uint32_t linkCapacity(LinkId link) const;

    /** Number of directed links in the graph. */
    std::uint32_t numLinks() const;

    /** Retry/blocking statistics (aborted setups, not dst-Nacks). */
    std::uint64_t blockedAborts() const { return blockedAborts_; }

    const CircuitConfig &circuitConfig() const { return config_; }

  protected:
    CircuitNetwork(sim::Simulator &simulator, std::string name,
                   net::NodeId num_nodes, const CircuitConfig &config);

    /**
     * Topology hook: the directed link sequence a message from
     * @p src to @p dst traverses.  Must be non-empty and
     * deterministic.
     */
    virtual std::vector<LinkId> route(net::NodeId src,
                                      net::NodeId dst) const = 0;

    /** Register a directed link with @p capacity channels.
     *  @return its LinkId. */
    LinkId addLink(std::uint32_t capacity);

  private:
    struct Circuit
    {
        net::MessageId message;
        net::NodeId src;
        net::NodeId dst;
        std::vector<LinkId> path;
        std::uint32_t reserved = 0; //!< links reserved so far
    };

    struct Node
    {
        std::deque<net::MessageId> sendQueue;
        net::MessageId activeSend = net::kNoMessage;
        net::MessageId activeReceive = net::kNoMessage;
        sim::Tick backoffUntil = 0;
    };

    void tryInject(net::NodeId node);
    void setupStep(std::uint64_t circuit_id);
    void unwind(std::uint64_t circuit_id, bool dst_nack);
    void unwindStep(std::uint64_t circuit_id);
    void hackArrive(std::uint64_t circuit_id);
    void finalFlit(std::uint64_t circuit_id);
    void teardownStep(std::uint64_t circuit_id);
    void finish(std::uint64_t circuit_id, bool requeue);
    void scheduleRetry(net::NodeId node);

    CircuitConfig config_;
    sim::Random rng_;
    std::vector<std::uint32_t> capacity_;
    std::vector<std::uint32_t> inUse_;
    std::vector<Node> nodes_;
    std::unordered_map<std::uint64_t, Circuit> circuits_;
    std::uint64_t nextCircuitId_ = 1;
    std::uint64_t blockedAborts_ = 0;
};

} // namespace baseline
} // namespace rmb

#endif // RMB_BASELINES_CIRCUIT_NETWORK_HH
