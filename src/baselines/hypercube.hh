/**
 * @file
 * Binary hypercube and Enhanced Hypercube (EHC) baselines.
 *
 * The hypercube routes with e-cube (dimension-order) routing; the
 * EHC (Choi & Somani, paper reference [4]) duplicates the links of
 * one dimension, which we model as capacity-2 channels in dimension
 * 0.
 */

#ifndef RMB_BASELINES_HYPERCUBE_HH
#define RMB_BASELINES_HYPERCUBE_HH

#include <cstdint>
#include <vector>

#include "baselines/circuit_network.hh"

namespace rmb {
namespace baseline {

/** N = 2^dimensions nodes; optionally enhanced (EHC). */
class HypercubeNetwork : public CircuitNetwork
{
  public:
    HypercubeNetwork(sim::Simulator &simulator,
                     std::uint32_t dimensions,
                     const CircuitConfig &config,
                     bool enhanced = false);

    std::uint32_t dimensions() const { return dimensions_; }
    bool enhanced() const { return enhanced_; }

  protected:
    std::vector<LinkId> route(net::NodeId src,
                              net::NodeId dst) const override;

  private:
    std::uint32_t dimensions_;
    bool enhanced_;
    /** link id of node u's dimension-b link: links_[u*dim + b]. */
    std::vector<LinkId> links_;
};

} // namespace baseline
} // namespace rmb

#endif // RMB_BASELINES_HYPERCUBE_HH
