#include "baselines/wormhole_ring.hh"

#include "common/logging.hh"

namespace rmb {
namespace baseline {

WormholeRingNetwork::WormholeRingNetwork(
    sim::Simulator &simulator, net::NodeId num_nodes,
    const WormholeConfig &config)
    : net::Network(simulator, "WormholeRing", num_nodes),
      config_(config), nodes_(num_nodes),
      linkFreeAt_(num_nodes, 0), linkScheduled_(num_nodes, false),
      rrNext_(num_nodes, 0)
{
    if (config_.vcsPerClass < 1)
        fatal("wormhole ring needs >= 1 virtual channel per class");
    if (config_.headerHopDelay < 1 || config_.flitDelay < 1)
        fatal("hop delays must be >= 1 tick");
    vcs_.assign(num_nodes,
                std::vector<Vc>(2 * config_.vcsPerClass));
}

net::MessageId
WormholeRingNetwork::send(net::NodeId src, net::NodeId dst,
                          std::uint32_t payload_flits)
{
    net::Message &m = createMessage(src, dst, payload_flits);
    Worm worm;
    worm.src = src;
    worm.dst = dst;
    worm.totalFlits = payload_flits + 2; // head + payload + tail
    worms_[m.id] = worm;
    nodes_[src].sendQueue.push_back(m.id);
    const net::NodeId gap = gapAfter(src);
    simulator().schedule(0, [this, gap] { kickLink(gap); });
    return m.id;
}

std::uint32_t
WormholeRingNetwork::classAt(const Worm &worm,
                             net::NodeId gap) const
{
    // The dateline sits between node N-1 and node 0: a message that
    // has wrapped (gap index below its source) switches to class 1.
    return gap < worm.src ? 1 : 0;
}

std::uint32_t
WormholeRingNetwork::allocateVc(net::NodeId gap,
                                net::MessageId msg)
{
    Worm &worm = worms_.at(msg);
    const std::uint32_t cls = classAt(worm, gap);
    const std::uint32_t base = cls * config_.vcsPerClass;
    for (std::uint32_t v = base; v < base + config_.vcsPerClass;
         ++v) {
        if (vcs_[gap][v].owner == net::kNoMessage) {
            vcs_[gap][v].owner = msg;
            worm.vcAt[gap] = v;
            return v;
        }
    }
    return kNoVc;
}

void
WormholeRingNetwork::kickLink(net::NodeId gap)
{
    if (linkScheduled_[gap])
        return;
    linkScheduled_[gap] = true;
    const sim::Tick now = simulator().now();
    const sim::Tick when =
        linkFreeAt_[gap] > now ? linkFreeAt_[gap] : now;
    simulator().scheduleAt(when, [this, gap] { linkStep(gap); });
}

void
WormholeRingNetwork::linkStep(net::NodeId gap)
{
    linkScheduled_[gap] = false;
    const sim::Tick now = simulator().now();
    if (now < linkFreeAt_[gap]) {
        kickLink(gap);
        return;
    }

    // Allocation pass: heads wanting to enter this gap.
    //  (1) the front of the local source queue,
    if (!nodes_[gap].sendQueue.empty()) {
        const net::MessageId mid = nodes_[gap].sendQueue.front();
        Worm &worm = worms_.at(mid);
        if (worm.injected == 0 && !worm.vcAt.count(gap))
            (void)allocateVc(gap, mid);
    }
    //  (2) a head flit buffered at this node (upstream gap's slot).
    const net::NodeId pg =
        (gap + numNodes() - 1) % numNodes();
    for (const Vc &up : vcs_[pg]) {
        if (up.owner == net::kNoMessage || !up.slotFull ||
            !up.slotIsHead) {
            continue;
        }
        Worm &worm = worms_.at(up.owner);
        if (worm.dst == gap) // consumed on arrival, never buffered
            continue;
        if (!worm.vcAt.count(gap))
            (void)allocateVc(gap, up.owner);
    }

    // Transfer pass: round-robin over the VCs.
    const std::uint32_t total_vcs = totalVcsPerGap();
    for (std::uint32_t i = 0; i < total_vcs; ++i) {
        const std::uint32_t v =
            (rrNext_[gap] + i) % total_vcs;
        Vc &vc = vcs_[gap][v];
        if (vc.owner == net::kNoMessage || vc.slotFull)
            continue;
        const net::MessageId mid = vc.owner;
        Worm &worm = worms_.at(mid);

        std::uint32_t seq;
        if (gap == gapAfter(worm.src)) {
            // Injection from the source.
            if (worm.injected >= worm.totalFlits)
                continue;
            seq = worm.injected;
            ++worm.injected;
            net::Message &m = messageRef(mid);
            if (seq == 0 &&
                m.state == net::MessageState::Queued) {
                noteFirstAttempt(m);
                noteCircuit(+1);
            }
            if (seq + 1 == worm.totalFlits) {
                rmb_assert(nodes_[worm.src].sendQueue.front() ==
                               mid,
                           "source queue out of order");
                nodes_[worm.src].sendQueue.pop_front();
            }
        } else {
            // Pull the flit out of the upstream slot.
            auto it = worm.vcAt.find(pg);
            if (it == worm.vcAt.end())
                continue;
            Vc &up = vcs_[pg][it->second];
            if (!up.slotFull)
                continue;
            seq = up.slotSeq;
            up.slotFull = false;
            if (up.slotIsTail) {
                up.owner = net::kNoMessage;
                worm.vcAt.erase(pg);
            }
            kickLink(pg); // the upstream slot can refill now
        }

        const sim::Tick dur = seq == 0 ? config_.headerHopDelay
                                       : config_.flitDelay;
        linkFreeAt_[gap] = now + dur;
        rrNext_[gap] = v + 1;
        simulator().schedule(dur, [this, gap, v, mid, seq] {
            Vc &arrived = vcs_[gap][v];
            rmb_assert(arrived.owner == mid,
                       "VC ownership changed mid-transfer");
            Worm &w = worms_.at(mid);
            const net::NodeId next_node =
                (gap + 1) % numNodes();
            if (next_node == w.dst) {
                consumeAtDestination(gap, v);
                return;
            }
            arrived.slotFull = true;
            arrived.slotSeq = seq;
            arrived.slotIsHead = seq == 0;
            arrived.slotIsTail = seq + 1 == w.totalFlits;
            kickLink(next_node); // downstream may pull it onward
        });
        kickLink(gap); // serialize the next transfer
        return;
    }
    // No transfer possible; future kicks re-arm the link.
}

void
WormholeRingNetwork::consumeAtDestination(net::NodeId gap,
                                          std::uint32_t v)
{
    Vc &vc = vcs_[gap][v];
    const net::MessageId mid = vc.owner;
    Worm &worm = worms_.at(mid);
    const std::uint32_t seq = worm.consumed;
    ++worm.consumed;
    net::Message &m = messageRef(mid);
    if (seq == 0)
        noteEstablished(m);
    if (seq + 1 == worm.totalFlits) {
        vc.owner = net::kNoMessage;
        worm.vcAt.erase(gap);
        noteCircuit(-1);
        noteDelivered(
            m, (worm.dst + numNodes() - worm.src) % numNodes());
        worms_.erase(mid);
        kickLink(gap); // the freed VC may unblock a waiting head
    }
}

} // namespace baseline
} // namespace rmb
