#include "baselines/fattree.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace rmb {
namespace baseline {

FatTreeNetwork::FatTreeNetwork(sim::Simulator &simulator,
                               net::NodeId num_nodes,
                               std::uint32_t capacity_cap,
                               const CircuitConfig &config)
    : CircuitNetwork(simulator, "FatTree", num_nodes, config),
      capacityCap_(capacity_cap)
{
    if (!isPowerOfTwo(num_nodes))
        fatal("fat tree needs N = 2^m leaves, got ", num_nodes);
    if (capacity_cap < 1)
        fatal("fat tree capacity cap must be >= 1");

    // Heap layout: root = 1, leaves = N .. 2N-1.
    const std::uint32_t heap_size = 2 * num_nodes;
    up_.resize(heap_size, UINT32_MAX);
    down_.resize(heap_size, UINT32_MAX);
    for (std::uint32_t v = 2; v < heap_size; ++v) {
        // Subtree leaf count of v: N / 2^depth, with depth from the
        // leaf row.
        std::uint32_t s = 1;
        std::uint32_t w = v;
        while (w < num_nodes) {
            s <<= 1;
            w <<= 1;
        }
        const std::uint32_t cap =
            std::min<std::uint32_t>(s, capacityCap_);
        up_[v] = addLink(cap);
        down_[v] = addLink(cap);
    }
}

std::uint32_t
FatTreeNetwork::leafOf(net::NodeId p) const
{
    return numNodes() + p;
}

std::vector<LinkId>
FatTreeNetwork::route(net::NodeId src, net::NodeId dst) const
{
    std::uint32_t a = leafOf(src);
    std::uint32_t b = leafOf(dst);
    // Climb both to the lowest common ancestor.
    std::vector<LinkId> ups;
    std::vector<LinkId> downs;
    while (a != b) {
        ups.push_back(up_[a]);
        downs.push_back(down_[b]);
        a >>= 1;
        b >>= 1;
    }
    std::reverse(downs.begin(), downs.end());
    ups.insert(ups.end(), downs.begin(), downs.end());
    return ups;
}

} // namespace baseline
} // namespace rmb
