#include "baselines/hypercube.hh"

#include "common/logging.hh"

namespace rmb {
namespace baseline {

namespace {

/** Validate before the base class constructs (user error => fatal). */
std::uint32_t
nodesForDimension(std::uint32_t dimensions)
{
    if (dimensions < 1 || dimensions > 20)
        fatal("hypercube dimension must be in [1, 20], got ",
              dimensions);
    return 1u << dimensions;
}

} // namespace

HypercubeNetwork::HypercubeNetwork(sim::Simulator &simulator,
                                   std::uint32_t dimensions,
                                   const CircuitConfig &config,
                                   bool enhanced)
    : CircuitNetwork(simulator, enhanced ? "EHC" : "Hypercube",
                     nodesForDimension(dimensions), config),
      dimensions_(dimensions), enhanced_(enhanced)
{
    const std::uint32_t n = 1u << dimensions_;
    links_.resize(static_cast<std::size_t>(n) * dimensions_);
    for (std::uint32_t u = 0; u < n; ++u) {
        for (std::uint32_t b = 0; b < dimensions_; ++b) {
            // The EHC duplicates the pair of links in one dimension;
            // we pick dimension 0.
            const std::uint32_t cap =
                (enhanced_ && b == 0) ? 2 : 1;
            links_[static_cast<std::size_t>(u) * dimensions_ + b] =
                addLink(cap);
        }
    }
}

std::vector<LinkId>
HypercubeNetwork::route(net::NodeId src, net::NodeId dst) const
{
    // e-cube: correct differing address bits from LSB to MSB.
    std::vector<LinkId> path;
    std::uint32_t cur = src;
    for (std::uint32_t b = 0; b < dimensions_; ++b) {
        if (((cur ^ dst) >> b) & 1u) {
            path.push_back(
                links_[static_cast<std::size_t>(cur) * dimensions_ +
                       b]);
            cur ^= 1u << b;
        }
    }
    rmb_assert(cur == dst, "e-cube routing failed");
    return path;
}

} // namespace baseline
} // namespace rmb
