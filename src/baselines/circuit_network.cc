#include "baselines/circuit_network.hh"

#include "common/logging.hh"

namespace rmb {
namespace baseline {

CircuitNetwork::CircuitNetwork(sim::Simulator &simulator,
                               std::string name,
                               net::NodeId num_nodes,
                               const CircuitConfig &config)
    : net::Network(simulator, std::move(name), num_nodes),
      config_(config), rng_(config.seed), nodes_(num_nodes)
{
    if (config_.headerHopDelay < 1 || config_.ackHopDelay < 1 ||
        config_.flitDelay < 1) {
        fatal("hop delays must be >= 1 tick");
    }
    if (config_.retryBackoffMin < 1 ||
        config_.retryBackoffMin > config_.retryBackoffMax) {
        fatal("bad retry backoff range");
    }
}

LinkId
CircuitNetwork::addLink(std::uint32_t capacity)
{
    rmb_assert(capacity >= 1, "a link needs at least one channel");
    capacity_.push_back(capacity);
    inUse_.push_back(0);
    return static_cast<LinkId>(capacity_.size() - 1);
}

std::uint32_t
CircuitNetwork::linkInUse(LinkId link) const
{
    rmb_assert(link < inUse_.size(), "bad link id");
    return inUse_[link];
}

std::uint32_t
CircuitNetwork::linkCapacity(LinkId link) const
{
    rmb_assert(link < capacity_.size(), "bad link id");
    return capacity_[link];
}

std::uint32_t
CircuitNetwork::numLinks() const
{
    return static_cast<std::uint32_t>(capacity_.size());
}

net::MessageId
CircuitNetwork::send(net::NodeId src, net::NodeId dst,
                     std::uint32_t payload_flits)
{
    net::Message &m = createMessage(src, dst, payload_flits);
    nodes_[src].sendQueue.push_back(m.id);
    const net::MessageId id = m.id;
    simulator().schedule(0, [this, src] { tryInject(src); });
    return id;
}

void
CircuitNetwork::tryInject(net::NodeId node)
{
    Node &n = nodes_[node];
    if (n.activeSend != net::kNoMessage || n.sendQueue.empty())
        return;
    if (simulator().now() < n.backoffUntil)
        return;

    const net::MessageId mid = n.sendQueue.front();
    n.sendQueue.pop_front();
    n.activeSend = mid;

    net::Message &m = messageRef(mid);
    if (m.state == net::MessageState::Queued)
        noteFirstAttempt(m);
    else
        noteRetry(m);

    const std::uint64_t cid = nextCircuitId_++;
    Circuit &c = circuits_[cid];
    c.message = mid;
    c.src = m.src;
    c.dst = m.dst;
    c.path = route(m.src, m.dst);
    rmb_assert(!c.path.empty(), "empty route from ", m.src, " to ",
               m.dst);
    setupStep(cid);
}

void
CircuitNetwork::setupStep(std::uint64_t circuit_id)
{
    auto it = circuits_.find(circuit_id);
    rmb_assert(it != circuits_.end(), "setup step on a dead circuit");
    Circuit &c = it->second;

    if (c.reserved == c.path.size()) {
        // Header has arrived at the destination.
        Node &dst = nodes_[c.dst];
        if (dst.activeReceive != net::kNoMessage) {
            noteNack(messageRef(c.message));
            unwind(circuit_id, true);
            return;
        }
        dst.activeReceive = c.message;
        const auto path_ticks =
            static_cast<sim::Tick>(c.path.size()) *
            config_.ackHopDelay;
        simulator().schedule(path_ticks, [this, circuit_id] {
            hackArrive(circuit_id);
        });
        return;
    }

    const LinkId link = c.path[c.reserved];
    if (inUse_[link] >= capacity_[link]) {
        ++blockedAborts_;
        unwind(circuit_id, false);
        return;
    }
    ++inUse_[link];
    ++c.reserved;
    simulator().schedule(config_.headerHopDelay, [this, circuit_id] {
        setupStep(circuit_id);
    });
}

void
CircuitNetwork::unwind(std::uint64_t circuit_id, bool dst_nack)
{
    (void)dst_nack;
    auto it = circuits_.find(circuit_id);
    rmb_assert(it != circuits_.end(), "unwind of a dead circuit");
    if (it->second.reserved == 0) {
        finish(circuit_id, true);
        return;
    }
    simulator().schedule(config_.ackHopDelay, [this, circuit_id] {
        unwindStep(circuit_id);
    });
}

void
CircuitNetwork::unwindStep(std::uint64_t circuit_id)
{
    auto it = circuits_.find(circuit_id);
    rmb_assert(it != circuits_.end(), "unwind of a dead circuit");
    Circuit &c = it->second;
    rmb_assert(c.reserved > 0, "unwind step with nothing reserved");
    --c.reserved;
    const LinkId link = c.path[c.reserved];
    rmb_assert(inUse_[link] > 0, "releasing an idle link");
    --inUse_[link];
    if (c.reserved == 0) {
        finish(circuit_id, true);
        return;
    }
    simulator().schedule(config_.ackHopDelay, [this, circuit_id] {
        unwindStep(circuit_id);
    });
}

void
CircuitNetwork::hackArrive(std::uint64_t circuit_id)
{
    auto it = circuits_.find(circuit_id);
    rmb_assert(it != circuits_.end(), "Hack for a dead circuit");
    Circuit &c = it->second;
    noteEstablished(messageRef(c.message));
    noteCircuit(+1);
    const net::Message &m = message(c.message);
    const sim::Tick duration =
        (static_cast<sim::Tick>(m.payloadFlits) + 1 +
         static_cast<sim::Tick>(c.path.size())) *
        config_.flitDelay;
    simulator().schedule(duration, [this, circuit_id] {
        finalFlit(circuit_id);
    });
}

void
CircuitNetwork::finalFlit(std::uint64_t circuit_id)
{
    auto it = circuits_.find(circuit_id);
    rmb_assert(it != circuits_.end(), "FF for a dead circuit");
    Circuit &c = it->second;
    noteDelivered(messageRef(c.message),
                  static_cast<std::uint32_t>(c.path.size()));
    noteCircuit(-1);
    nodes_[c.dst].activeReceive = net::kNoMessage;
    simulator().schedule(config_.ackHopDelay, [this, circuit_id] {
        teardownStep(circuit_id);
    });
}

void
CircuitNetwork::teardownStep(std::uint64_t circuit_id)
{
    auto it = circuits_.find(circuit_id);
    rmb_assert(it != circuits_.end(), "teardown of a dead circuit");
    Circuit &c = it->second;
    rmb_assert(c.reserved > 0, "teardown with nothing reserved");
    --c.reserved;
    const LinkId link = c.path[c.reserved];
    rmb_assert(inUse_[link] > 0, "releasing an idle link");
    --inUse_[link];
    if (c.reserved == 0) {
        finish(circuit_id, false);
        return;
    }
    simulator().schedule(config_.ackHopDelay, [this, circuit_id] {
        teardownStep(circuit_id);
    });
}

void
CircuitNetwork::finish(std::uint64_t circuit_id, bool requeue)
{
    auto it = circuits_.find(circuit_id);
    rmb_assert(it != circuits_.end(), "finish of a dead circuit");
    const net::MessageId mid = it->second.message;
    const net::NodeId src = it->second.src;
    circuits_.erase(it);

    Node &n = nodes_[src];
    rmb_assert(n.activeSend == mid, "send port bookkeeping broken");
    n.activeSend = net::kNoMessage;

    if (requeue) {
        net::Message &m = messageRef(mid);
        if (config_.maxRetries > 0 &&
            m.retries >= config_.maxRetries) {
            noteFailed(m);
        } else {
            n.sendQueue.push_front(mid);
            scheduleRetry(src);
            return;
        }
    }
    tryInject(src);
}

void
CircuitNetwork::scheduleRetry(net::NodeId node)
{
    sim::Tick backoff = rng_.uniformRange(
        config_.retryBackoffMin, config_.retryBackoffMax);
    if (config_.exponentialBackoff) {
        // The retrying message sits at the queue front.
        const net::MessageId mid = nodes_[node].sendQueue.front();
        const std::uint32_t shift =
            std::min(message(mid).retries, 16u);
        if ((backoff << shift) >= config_.retryBackoffCap) {
            // Jittered cap: a deterministic backoff phase-locks
            // colliding senders (see RmbNetwork::scheduleRetry).
            backoff = rng_.uniformRange(config_.retryBackoffCap / 2,
                                        config_.retryBackoffCap);
        } else {
            backoff <<= shift;
        }
    }
    nodes_[node].backoffUntil = simulator().now() + backoff;
    simulator().schedule(backoff, [this, node] { tryInject(node); });
}

} // namespace baseline
} // namespace rmb
