/**
 * @file
 * Offline scheduling bounds for the competitiveness study the paper
 * proposes in its concluding remarks ("the ratio of its required
 * time for communicating all messages to the time required by an
 * optimal off-line schedule").
 *
 * A message from s to d occupies one bus level in every clockwise
 * gap of its path for its whole circuit lifetime, so a batch of
 * messages maps to clockwise arcs on the ring and an offline
 * schedule is a colouring of those arcs into rounds where no gap
 * carries more than k arcs per round.
 */

#ifndef RMB_OFFLINE_SCHEDULE_HH
#define RMB_OFFLINE_SCHEDULE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "workload/permutation.hh"

namespace rmb {
namespace offline {

/** Timing model used to convert rounds into ticks. */
struct TimingModel
{
    sim::Tick headerHopDelay = 4;
    sim::Tick ackHopDelay = 2;
    sim::Tick flitDelay = 1;

    /**
     * Time one message holds its circuit and completes, from
     * injection to the source-side teardown finishing: header walk +
     * Hack walk + stream + Fack walk.
     */
    sim::Tick messageTime(std::uint32_t hops,
                          std::uint32_t payload_flits) const;

    /**
     * Injection-to-delivery time (no trailing Fack walk); matches
     * how batch makespans are measured (last delivery).
     */
    sim::Tick deliveryTime(std::uint32_t hops,
                           std::uint32_t payload_flits) const;
};

/** A batch schedule: per-message round assignment. */
struct OfflineSchedule
{
    std::vector<std::uint32_t> round; //!< per pair index
    std::uint32_t numRounds = 0;
};

/**
 * The bandwidth lower bound: no schedule needs fewer than
 * ceil(maxRingLoad / k) rounds.
 */
std::uint32_t minRounds(net::NodeId n, const workload::PairList &pairs,
                        std::uint32_t k);

/**
 * First-fit greedy arc colouring: assign each pair (longest path
 * first) to the earliest round where every gap on its path still has
 * a level free.  Produces a feasible offline schedule whose round
 * count is an upper bound on the optimum.
 */
OfflineSchedule greedySchedule(net::NodeId n,
                               const workload::PairList &pairs,
                               std::uint32_t k);

/**
 * Exact minimum number of rounds for @p pairs on k buses, by
 * branch-and-bound over arc-to-round assignments (the decision
 * problem is circular-arc colouring, NP-hard in general, so this is
 * only for small instances).  Search effort is bounded by
 * @p node_budget branch steps; returns 0 if the budget is exhausted
 * before proving optimality.
 */
std::uint32_t optimalRounds(net::NodeId n,
                            const workload::PairList &pairs,
                            std::uint32_t k,
                            std::uint64_t node_budget = 5'000'000);

/**
 * A makespan lower bound in ticks for any schedule of @p pairs on an
 * RMB with k buses: the larger of the bandwidth bound (rounds times
 * the shortest message service time crossing the busiest gap) and
 * the longest single message's unloaded completion time.
 */
sim::Tick lowerBoundTicks(net::NodeId n,
                          const workload::PairList &pairs,
                          std::uint32_t k, std::uint32_t payload_flits,
                          const TimingModel &timing);

/**
 * Makespan of the greedy offline schedule under an idealized
 * executor that starts round r+1 the instant round r's last message
 * finishes (no retries, no compaction delays).  An upper bound on
 * the optimal offline makespan and the reference the competitiveness
 * bench reports against.
 */
sim::Tick greedyMakespanTicks(net::NodeId n,
                              const workload::PairList &pairs,
                              std::uint32_t k,
                              std::uint32_t payload_flits,
                              const TimingModel &timing);

} // namespace offline
} // namespace rmb

#endif // RMB_OFFLINE_SCHEDULE_HH
