#include "offline/schedule.hh"

#include <algorithm>
#include <numeric>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace rmb {
namespace offline {

namespace {

std::uint32_t
pathHops(net::NodeId n, net::NodeId src, net::NodeId dst)
{
    return (dst + n - src) % n;
}

} // namespace

sim::Tick
TimingModel::messageTime(std::uint32_t hops,
                         std::uint32_t payload_flits) const
{
    // Delivery time plus the trailing Fack walk that releases the
    // segments.
    return deliveryTime(hops, payload_flits) +
           static_cast<sim::Tick>(hops) * ackHopDelay;
}

sim::Tick
TimingModel::deliveryTime(std::uint32_t hops,
                          std::uint32_t payload_flits) const
{
    const auto h = static_cast<sim::Tick>(hops);
    // Header walk + Hack walk + pipelined stream (payload + FF +
    // drain).
    return h * headerHopDelay + h * ackHopDelay +
           (static_cast<sim::Tick>(payload_flits) + 1 + h) *
               flitDelay;
}

std::uint32_t
minRounds(net::NodeId n, const workload::PairList &pairs,
          std::uint32_t k)
{
    rmb_assert(k >= 1, "k must be >= 1");
    const std::uint32_t load = workload::maxRingLoad(n, pairs);
    return static_cast<std::uint32_t>(
        ceilDiv(load, k));
}

OfflineSchedule
greedySchedule(net::NodeId n, const workload::PairList &pairs,
               std::uint32_t k)
{
    rmb_assert(k >= 1, "k must be >= 1");
    OfflineSchedule s;
    s.round.assign(pairs.size(), 0);

    // Longest-path-first order reduces fragmentation.
    std::vector<std::size_t> order(pairs.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  const auto ha = pathHops(n, pairs[a].first,
                                           pairs[a].second);
                  const auto hb = pathHops(n, pairs[b].first,
                                           pairs[b].second);
                  if (ha != hb)
                      return ha > hb;
                  return a < b;
              });

    // usage[r][g] = arcs crossing gap g in round r.
    std::vector<std::vector<std::uint32_t>> usage;
    for (std::size_t idx : order) {
        const auto [src, dst] = pairs[idx];
        std::uint32_t r = 0;
        for (;; ++r) {
            if (r == usage.size())
                usage.emplace_back(n, 0);
            bool fits = true;
            for (net::NodeId g = src; g != dst;
                 g = (g + 1) % n) {
                if (usage[r][g] >= k) {
                    fits = false;
                    break;
                }
            }
            if (fits)
                break;
        }
        for (net::NodeId g = src; g != dst; g = (g + 1) % n)
            ++usage[r][g];
        s.round[idx] = r;
    }
    s.numRounds = static_cast<std::uint32_t>(usage.size());
    return s;
}

namespace {

/** Depth-first branch-and-bound for optimalRounds(). */
class RoundSearch
{
  public:
    RoundSearch(net::NodeId n, const workload::PairList &pairs,
                std::uint32_t k, std::uint64_t budget)
        : n_(n), pairs_(pairs), k_(k), budget_(budget)
    {
        // Longest-path-first ordering tightens the search.
        order_.resize(pairs.size());
        std::iota(order_.begin(), order_.end(), 0);
        std::sort(order_.begin(), order_.end(),
                  [&](std::size_t a, std::size_t b) {
                      return hops(a) > hops(b);
                  });
    }

    /** @return true if @p rounds suffice (within budget). */
    bool
    feasible(std::uint32_t rounds)
    {
        usage_.assign(rounds,
                      std::vector<std::uint32_t>(n_, 0));
        exhausted_ = false;
        const bool ok = place(0, rounds);
        return ok && !exhausted_;
    }

    bool budgetExhausted() const { return exhausted_; }

  private:
    std::uint32_t
    hops(std::size_t i) const
    {
        return (pairs_[i].second + n_ - pairs_[i].first) % n_;
    }

    bool
    fits(std::size_t i, std::uint32_t r) const
    {
        for (net::NodeId g = pairs_[i].first;
             g != pairs_[i].second; g = (g + 1) % n_) {
            if (usage_[r][g] >= k_)
                return false;
        }
        return true;
    }

    void
    apply(std::size_t i, std::uint32_t r, std::int32_t delta)
    {
        for (net::NodeId g = pairs_[i].first;
             g != pairs_[i].second; g = (g + 1) % n_) {
            usage_[r][g] = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(usage_[r][g]) + delta);
        }
    }

    bool
    place(std::size_t idx, std::uint32_t rounds)
    {
        if (idx == order_.size())
            return true;
        if (budget_-- == 0) {
            exhausted_ = true;
            return false;
        }
        const std::size_t arc = order_[idx];
        // Symmetry breaking: the first arc goes to round 0; later
        // arcs may only open one round beyond those already used.
        const std::uint32_t limit =
            idx == 0 ? 1
                     : std::min<std::uint32_t>(
                           rounds, maxUsedRound_ + 2);
        for (std::uint32_t r = 0; r < limit; ++r) {
            if (!fits(arc, r))
                continue;
            apply(arc, r, +1);
            const std::uint32_t saved = maxUsedRound_;
            maxUsedRound_ = std::max(maxUsedRound_, r);
            if (place(idx + 1, rounds))
                return true;
            maxUsedRound_ = saved;
            apply(arc, r, -1);
            if (exhausted_)
                return false;
        }
        return false;
    }

    net::NodeId n_;
    const workload::PairList &pairs_;
    std::uint32_t k_;
    std::uint64_t budget_;
    bool exhausted_ = false;
    std::vector<std::size_t> order_;
    std::vector<std::vector<std::uint32_t>> usage_;
    std::uint32_t maxUsedRound_ = 0;
};

} // namespace

std::uint32_t
optimalRounds(net::NodeId n, const workload::PairList &pairs,
              std::uint32_t k, std::uint64_t node_budget)
{
    rmb_assert(k >= 1, "k must be >= 1");
    if (pairs.empty())
        return 0;
    const std::uint32_t lo = minRounds(n, pairs, k);
    const std::uint32_t hi = greedySchedule(n, pairs, k).numRounds;
    for (std::uint32_t rounds = lo; rounds < hi; ++rounds) {
        RoundSearch search(n, pairs, k, node_budget);
        if (search.feasible(rounds))
            return rounds;
        if (search.budgetExhausted())
            return 0; // could not prove optimality
    }
    return hi;
}

sim::Tick
lowerBoundTicks(net::NodeId n, const workload::PairList &pairs,
                std::uint32_t k, std::uint32_t payload_flits,
                const TimingModel &timing)
{
    if (pairs.empty())
        return 0;
    // Longest single message, unloaded, measured to its delivery
    // (batch makespans are delivery-relative).
    sim::Tick longest = 0;
    std::uint32_t shortest_hops = UINT32_MAX;
    for (const auto &[src, dst] : pairs) {
        const std::uint32_t h = pathHops(n, src, dst);
        longest = std::max(longest,
                           timing.deliveryTime(h, payload_flits));
        shortest_hops = std::min(shortest_hops, h);
    }
    // Bandwidth bound: the busiest gap must serialize its arcs into
    // batches of at most k; consecutive users of a segment are
    // separated by at least the quickest possible full hold time
    // (header passage to Fack), and the last one still needs its
    // delivery time.
    const std::uint32_t rounds = minRounds(n, pairs, k);
    const sim::Tick min_hold =
        timing.messageTime(1, payload_flits);
    const sim::Tick bandwidth =
        static_cast<sim::Tick>(rounds - 1) * min_hold +
        timing.deliveryTime(1, payload_flits);
    return std::max(longest, bandwidth);
}

sim::Tick
greedyMakespanTicks(net::NodeId n, const workload::PairList &pairs,
                    std::uint32_t k, std::uint32_t payload_flits,
                    const TimingModel &timing)
{
    if (pairs.empty())
        return 0;
    const OfflineSchedule s = greedySchedule(n, pairs, k);
    // Round r lasts as long as its slowest message.
    std::vector<sim::Tick> round_time(s.numRounds, 0);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const std::uint32_t h =
            pathHops(n, pairs[i].first, pairs[i].second);
        round_time[s.round[i]] =
            std::max(round_time[s.round[i]],
                     timing.messageTime(h, payload_flits));
    }
    sim::Tick total = 0;
    for (sim::Tick t : round_time)
        total += t;
    return total;
}

} // namespace offline
} // namespace rmb
